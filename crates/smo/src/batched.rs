//! The batched working-set solver — GMP-SVM's binary SVM level (§3.3.1).
//!
//! Per outer round:
//! 1. check global optimality (two reductions over `f`);
//! 2. sort instances by their optimality indicators and pick `q` new
//!    violators — `q/2` from the `I_u` side (smallest `f`) and `q/2` from
//!    the `I_l` side (largest `f`) — keeping the rest of the previous
//!    working set resident (the "keep half" observation of the paper);
//! 3. compute the kernel rows of the new violators in **one** batched
//!    launch into the FIFO [`gmp_kernel::KernelBuffer`];
//! 4. run SMO restricted to the working set against buffered rows, with
//!    early termination scaled by `δ = f_l - f_u` to avoid local
//!    optimization on the working set;
//! 5. propagate the accumulated α changes to the optimality indicators of
//!    all instances (one map launch per changed row, batched).

use crate::common::{
    compute_objective, compute_rho_capped, in_lower, in_upper, pair_update_capped, PhaseTimes,
    SmoParams, SolverResult, SolverTelemetry, TAU,
};
use gmp_gpusim::cost::KernelCost;
use gmp_gpusim::reduce::{argmax_masked, argmin_masked};
use gmp_gpusim::Executor;
use gmp_kernel::KernelRows;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Parameters of the batched solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchedParams {
    /// Shared SMO parameters (C, ε, iteration cap).
    pub base: SmoParams,
    /// Working-set / GPU-buffer capacity in rows (the paper's buffer size,
    /// default 1024).
    pub ws_size: usize,
    /// New violating instances added per outer round (the paper's `q`,
    /// default 512 — about half the buffer, per Fig. 7's finding).
    pub q: usize,
    /// Early-termination factor ρ for the inner loop: stop improving the
    /// working set once its local violation drops below
    /// `max(ε, ρ · δ₀)` where `δ₀` is the global violation at round start.
    /// Larger δ₀ ⇒ earlier exit (§3.3.1 "reducing the negative effect of
    /// local optimization").
    pub inner_relax: f64,
    /// Hard cap on inner iterations per round.
    pub max_inner: usize,
}

impl Default for BatchedParams {
    fn default() -> Self {
        BatchedParams {
            base: SmoParams::default(),
            ws_size: 1024,
            q: 512,
            inner_relax: 0.1,
            max_inner: 4096,
        }
    }
}

impl BatchedParams {
    /// Defaults with a given `C`.
    pub fn with_c(c: f64) -> Self {
        BatchedParams {
            base: SmoParams::with_c(c),
            ..Default::default()
        }
    }

    /// Clamp the working set and batch sizes to a problem of `n` instances
    /// (small problems need no 1024-row buffer).
    pub fn clamped_for(&self, n: usize) -> BatchedParams {
        let ws = self.ws_size.min(n).max(2);
        BatchedParams {
            ws_size: ws,
            q: self.q.min(ws).max(2),
            ..*self
        }
    }
}

/// The batched working-set SMO solver.
#[derive(Debug, Clone, Default)]
pub struct BatchedSmoSolver {
    params: BatchedParams,
}

impl BatchedSmoSolver {
    /// A solver with the given parameters.
    pub fn new(params: BatchedParams) -> Self {
        BatchedSmoSolver { params }
    }

    /// Train on labels `y` (±1) with rows from `rows`, charging `exec`.
    ///
    /// The row provider's buffer must hold at least `ws_size` rows.
    pub fn solve(&self, y: &[f64], rows: &mut dyn KernelRows, exec: &dyn Executor) -> SolverResult {
        let caps = vec![self.params.base.c; rows.n()];
        self.solve_weighted(y, rows, exec, &caps)
    }

    /// [`BatchedSmoSolver::solve`] with per-instance box caps
    /// `0 <= α_i <= caps[i]` (weighted classes, LibSVM's `-wi`).
    pub fn solve_weighted(
        &self,
        y: &[f64],
        rows: &mut dyn KernelRows,
        exec: &dyn Executor,
        caps: &[f64],
    ) -> SolverResult {
        let f_init: Vec<f64> = y.iter().map(|&yi| -yi).collect();
        self.solve_with_init(y, rows, exec, caps, &f_init)
    }

    /// Fully general form (see `ClassicSmoSolver::solve_with_init`):
    /// custom linear term via the initial indicators. ε-SVR uses this.
    pub fn solve_with_init(
        &self,
        y: &[f64],
        rows: &mut dyn KernelRows,
        exec: &dyn Executor,
        caps: &[f64],
        f_init: &[f64],
    ) -> SolverResult {
        let alpha0 = vec![0.0f64; rows.n()];
        self.solve_warm(y, rows, exec, caps, f_init, &alpha0)
    }

    /// Warm-started general form: initial weights `alpha0` (feasible for
    /// the caps and the equality constraint) with `f_init` already
    /// reflecting them, i.e. `f_init[i] = Σ_j α0_j y_j K_ij + y_i p_i`.
    /// One-class SVM (ν-initialization) enters here.
    pub fn solve_warm(
        &self,
        y: &[f64],
        rows: &mut dyn KernelRows,
        exec: &dyn Executor,
        caps: &[f64],
        f_init: &[f64],
        alpha0: &[f64],
    ) -> SolverResult {
        let n = rows.n();
        assert_eq!(y.len(), n, "label/instance count mismatch");
        assert_eq!(caps.len(), n, "cap/instance count mismatch");
        assert_eq!(f_init.len(), n, "f_init/instance count mismatch");
        assert_eq!(alpha0.len(), n, "alpha0/instance count mismatch");
        assert!(
            y.iter().all(|&v| v == 1.0 || v == -1.0),
            "labels must be ±1"
        );
        assert!(caps.iter().all(|&c| c > 0.0), "caps must be positive");
        assert!(
            alpha0
                .iter()
                .zip(caps)
                .all(|(&a, &c)| (0.0..=c).contains(&a)),
            "alpha0 violates the box"
        );
        let params = self.params.clamped_for(n);
        let eps = params.base.eps;
        // Every pair update moves α_u and α_l by ±λy, so Σ y α is conserved
        // from the warm start onward; the per-round audit holds it to that.
        let y_alpha_target: f64 = y.iter().zip(alpha0).map(|(&yi, &a)| yi * a).sum();

        let mut alpha = alpha0.to_vec();
        let mut f: Vec<f64> = f_init.to_vec();

        let mut ws: Vec<usize> = Vec::with_capacity(params.ws_size);
        let mut in_ws = vec![false; n];
        let mut order: Vec<usize> = (0..n).collect(); // argsort scratch

        let mut iterations = 0u64;
        let mut outer_rounds = 0u64;
        let mut converged = false;
        let mut wall = PhaseTimes::default();
        let mut sim = PhaseTimes::default();

        loop {
            // --- Global optimality (Constraint 9).
            let t0 = Instant::now();
            let s0 = exec.elapsed();
            let u_ext = argmin_masked(exec, &f, |i| in_upper(y[i], alpha[i], caps[i]));
            let l_ext = argmax_masked(exec, &f, |i| in_lower(y[i], alpha[i], caps[i]));
            let (Some(u_ext), Some(l_ext)) = (u_ext, l_ext) else {
                converged = true;
                wall.other_s += t0.elapsed().as_secs_f64();
                sim.other_s += exec.elapsed() - s0;
                break;
            };
            let delta0 = l_ext.value - u_ext.value;
            if delta0 < eps {
                converged = true;
                wall.other_s += t0.elapsed().as_secs_f64();
                sim.other_s += exec.elapsed() - s0;
                break;
            }

            // --- Select q new violators (sort f ascending; take from both
            // ends respecting I_u / I_l membership), keep previous rows.
            order.sort_unstable_by(|&a, &b| f[a].total_cmp(&f[b]));
            // Bitonic-sort-equivalent launch cost.
            let logn = (n.max(2) as f64).log2();
            exec.charge(KernelCost {
                threads: (n as u64) / 2,
                flops: (n as f64 * logn * logn) as u64,
                bytes_read: (16.0 * n as f64 * logn) as u64,
                bytes_written: 8 * n as u64,
            });
            let half = (params.q / 2).max(1);
            let mut fresh: Vec<usize> = Vec::with_capacity(params.q);
            let mut picked_up = 0usize;
            // Mark membership immediately: a free SV belongs to both I_u
            // and I_l and must not be picked by both passes (a duplicate
            // working-set entry would double-apply indicator updates).
            for &i in order.iter() {
                if picked_up == half {
                    break;
                }
                if !in_ws[i] && in_upper(y[i], alpha[i], caps[i]) && f[i] < l_ext.value {
                    fresh.push(i);
                    in_ws[i] = true;
                    picked_up += 1;
                }
            }
            let mut picked_low = 0usize;
            for &i in order.iter().rev() {
                if picked_low == half {
                    break;
                }
                if !in_ws[i] && in_lower(y[i], alpha[i], caps[i]) && f[i] > u_ext.value {
                    fresh.push(i);
                    in_ws[i] = true;
                    picked_low += 1;
                }
            }
            // Refresh the working set FIFO: drop oldest to make room
            // (dropped ids are disjoint from `fresh` by construction).
            let overflow = (ws.len() + fresh.len()).saturating_sub(params.ws_size);
            for dropped in ws.drain(..overflow) {
                in_ws[dropped] = false;
            }
            ws.extend_from_slice(&fresh);
            wall.other_s += t0.elapsed().as_secs_f64();
            sim.other_s += exec.elapsed() - s0;

            if ws.is_empty() {
                // Nothing selectable although not converged: numerical
                // corner; treat as converged at current tolerance.
                converged = true;
                break;
            }

            // --- Batched kernel rows for the working set (misses only).
            let tk = Instant::now();
            let sk = exec.elapsed();
            rows.ensure(exec, &ws);
            wall.kernel_s += tk.elapsed().as_secs_f64();
            sim.kernel_s += exec.elapsed() - sk;

            // --- Inner SMO over the working set with buffered rows.
            let t2 = Instant::now();
            let s2 = exec.elapsed();
            // When no fresh violators exist, the working set already holds
            // every remaining violator: solve it to the full tolerance,
            // otherwise the δ-relaxed exit would stall below δ₀ but above ε.
            let inner_eps = if fresh.is_empty() {
                eps
            } else {
                eps.max(params.inner_relax * delta0)
            };
            let mut changed = false;
            let mut alpha_before: Vec<(usize, f64)> = ws.iter().map(|&i| (i, alpha[i])).collect();
            let mut inner_iters_this_round = 0u64;
            for _ in 0..params.max_inner {
                let mut u = usize::MAX;
                let mut f_u = f64::INFINITY;
                for &i in &ws {
                    if in_upper(y[i], alpha[i], caps[i]) && f[i] < f_u {
                        f_u = f[i];
                        u = i;
                    }
                }
                if u == usize::MAX {
                    break;
                }
                // Local convergence is judged on the *maximum* violation in
                // the working set (Constraint 9 restricted to it) — not on
                // the violation of the second-order pick, which can be
                // small even while large violators remain.
                let local_f_max = ws
                    .iter()
                    .filter(|&&i| in_lower(y[i], alpha[i], caps[i]))
                    .map(|&i| f[i])
                    .fold(f64::NEG_INFINITY, f64::max);
                if local_f_max - f_u < inner_eps {
                    break;
                }
                // Second-order partner selection within the working set.
                let k_u = rows.row(u);
                let diag_u = rows.diag(u);
                let mut l = usize::MAX;
                let mut best = f64::NEG_INFINITY;
                let mut f_l_sel = f64::NEG_INFINITY;
                for &i in &ws {
                    if in_lower(y[i], alpha[i], caps[i]) && f[i] > f_u {
                        let eta = (diag_u + rows.diag(i) - 2.0 * k_u[i]).max(TAU);
                        let d = f_u - f[i];
                        let gain = d * d / eta;
                        if gain > best {
                            best = gain;
                            l = i;
                            f_l_sel = f[i];
                        }
                    }
                }
                if l == usize::MAX {
                    break;
                }
                let eta = rows.diag(u) + rows.diag(l) - 2.0 * k_u[l];
                let lambda =
                    pair_update_capped(y, &mut alpha, caps[u], caps[l], u, l, f_u, f_l_sel, eta);
                // Refresh indicators of working-set members only; the rest
                // of `f` is reconciled after the inner loop.
                let k_l = rows.row(l);
                let k_u = rows.row(u);
                for &i in &ws {
                    f[i] += lambda * (k_u[i] - k_l[i]);
                }
                iterations += 1;
                inner_iters_this_round += 1;
                changed = true;
                if iterations >= params.base.max_iter {
                    break;
                }
            }
            // The whole inner solve executes as ONE device launch (the
            // ThunderSVM design: one thread block per working set, rows in
            // fast memory, iterating in-kernel). Per-iteration work: two
            // reductions and the indicator refresh over the working set.
            exec.charge(KernelCost {
                threads: ws.len() as u64,
                flops: (inner_iters_this_round.max(1)) * ws.len() as u64 * 14,
                bytes_read: inner_iters_this_round * ws.len() as u64 * 32,
                bytes_written: inner_iters_this_round * 16 + ws.len() as u64 * 8,
            });
            wall.subproblem_s += t2.elapsed().as_secs_f64();
            sim.subproblem_s += exec.elapsed() - s2;

            // --- Propagate Δα to indicators outside the working set.
            let t3 = Instant::now();
            let s3 = exec.elapsed();
            alpha_before.retain(|&(i, a0)| alpha[i] != a0);
            if !alpha_before.is_empty() {
                for &(j, a0) in &alpha_before {
                    let delta_ya = (alpha[j] - a0) * y[j];
                    let k_j = rows.row(j);
                    for i in 0..n {
                        if !in_ws[i] {
                            f[i] += delta_ya * k_j[i];
                        }
                    }
                }
                exec.charge(KernelCost::map(
                    n as u64,
                    2 * alpha_before.len() as u64,
                    8 * (1 + alpha_before.len() as u64),
                ));
            }
            wall.other_s += t3.elapsed().as_secs_f64();
            sim.other_s += exec.elapsed() - s3;

            outer_rounds += 1;
            audit_solver_state(y, &alpha, caps, &f, y_alpha_target);
            if !changed && fresh.is_empty() {
                // Stalled: no new candidates and no inner progress.
                break;
            }
            if iterations >= params.base.max_iter {
                break;
            }
        }
        audit_solver_state(y, &alpha, caps, &f, y_alpha_target);

        let rho = compute_rho_capped(y, &alpha, &f, caps);
        let objective = compute_objective(y, &alpha, &f);
        SolverResult {
            rho,
            objective,
            iterations,
            outer_rounds,
            converged,
            telemetry: SolverTelemetry {
                rows: rows.stats(),
                sim_phases: sim,
                wall_phases: wall,
            },
            alpha,
            f,
        }
    }
}

/// `debug-invariants` audit of the solver state after an outer round:
///
/// - the box `0 ≤ α_i ≤ C_i` holds exactly (pair updates clip to it);
/// - the equality constraint `Σ y α` is conserved from the warm start;
/// - every optimality indicator is finite, and every instance still
///   belongs to `I_u ∪ I_l` — an α nudged outside the box by a broken
///   update drops out of both sets and is silently never selected again.
///
/// Compiled out unless the `debug-invariants` feature is on.
#[allow(unused_variables)]
fn audit_solver_state(y: &[f64], alpha: &[f64], caps: &[f64], f: &[f64], y_alpha_target: f64) {
    gmp_sync::audit!({
        for i in 0..alpha.len() {
            assert!(
                (0.0..=caps[i]).contains(&alpha[i]),
                "alpha[{i}] = {} escaped the box [0, {}]",
                alpha[i],
                caps[i]
            );
            assert!(
                f[i].is_finite(),
                "indicator f[{i}] = {} is not finite",
                f[i]
            );
            assert!(
                in_upper(y[i], alpha[i], caps[i]) || in_lower(y[i], alpha[i], caps[i]),
                "instance {i} (y={}, alpha={}) fell out of I_u and I_l",
                y[i],
                alpha[i]
            );
        }
        let y_alpha: f64 = y.iter().zip(alpha).map(|(&yi, &a)| yi * a).sum();
        let tol = 1e-9 * caps.iter().fold(1.0f64, |m, &c| m.max(c)) * alpha.len() as f64;
        assert!(
            (y_alpha - y_alpha_target).abs() <= tol,
            "equality constraint drifted: sum y*alpha = {y_alpha}, expected {y_alpha_target}"
        );
    });
}

#[cfg(test)]
// Tests index several parallel arrays (y, alpha, f) by position.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::classic::ClassicSmoSolver;
    use gmp_gpusim::CpuExecutor;
    use gmp_kernel::{BufferedRows, KernelKind, KernelOracle, ReplacementPolicy};
    use gmp_sparse::CsrMatrix;
    use std::sync::Arc;

    fn exec() -> CpuExecutor {
        CpuExecutor::xeon(1)
    }

    /// The trainer moves solvers and their results across wave threads;
    /// these bounds are part of the crate's contract, not an accident.
    #[test]
    fn solver_state_crosses_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BatchedSmoSolver>();
        assert_send_sync::<BatchedParams>();
        assert_send_sync::<ClassicSmoSolver>();
        assert_send_sync::<crate::common::SolverResult>();
        assert_send_sync::<crate::common::SolverTelemetry>();
    }

    fn make_rows(data: &[Vec<f64>], ncols: usize, kind: KernelKind, cap: usize) -> BufferedRows {
        let m = Arc::new(CsrMatrix::from_dense(data, ncols));
        let oracle = Arc::new(KernelOracle::new(m, kind));
        BufferedRows::new(oracle, cap, ReplacementPolicy::FifoBatch, None).unwrap()
    }

    /// Two Gaussian-ish blobs in 2-D, deterministic.
    fn blobs(n_per: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_per {
            let t = i as f64 / n_per as f64;
            let jitter = ((i * 2654435761) % 97) as f64 / 97.0 - 0.5;
            x.push(vec![-1.5 + 0.6 * jitter, t + 0.3 * jitter]);
            y.push(-1.0);
            x.push(vec![1.5 - 0.6 * jitter, t - 0.3 * jitter]);
            y.push(1.0);
        }
        (x, y)
    }

    fn batched_params(ws: usize, q: usize) -> BatchedParams {
        BatchedParams {
            base: SmoParams::with_c(1.0),
            ws_size: ws,
            q,
            inner_relax: 0.1,
            max_inner: 4096,
        }
    }

    #[test]
    fn converges_on_blobs() {
        let (x, y) = blobs(40);
        let mut rows = make_rows(&x, 2, KernelKind::Rbf { gamma: 0.5 }, 32);
        let r = BatchedSmoSolver::new(batched_params(32, 16)).solve(&y, &mut rows, &exec());
        assert!(r.converged, "did not converge");
        for i in 0..y.len() {
            let v = r.f[i] + y[i] - r.rho;
            assert!(v * y[i] > 0.0, "misclassified training point {i}");
        }
    }

    #[test]
    fn matches_classic_solver_optimum() {
        let (x, y) = blobs(30);
        let kind = KernelKind::Rbf { gamma: 0.5 };
        let c = 2.0;

        let mut rows_c = make_rows(&x, 2, kind, x.len());
        let classic = ClassicSmoSolver::new(SmoParams::with_c(c)).solve(&y, &mut rows_c, &exec());

        let mut rows_b = make_rows(&x, 2, kind, 16);
        let mut bp = batched_params(16, 8);
        bp.base.c = c;
        let batched = BatchedSmoSolver::new(bp).solve(&y, &mut rows_b, &exec());

        assert!(classic.converged && batched.converged);
        // Same optimum within tolerance: objective, rho, and alphas.
        assert!(
            (classic.objective - batched.objective).abs() < 1e-2 * classic.objective.abs().max(1.0),
            "objective {} vs {}",
            classic.objective,
            batched.objective
        );
        assert!(
            (classic.rho - batched.rho).abs() < 5e-3,
            "rho {} vs {}",
            classic.rho,
            batched.rho
        );
    }

    #[test]
    fn equality_constraint_preserved() {
        let (x, y) = blobs(25);
        let mut rows = make_rows(&x, 2, KernelKind::Rbf { gamma: 1.0 }, 16);
        let r = BatchedSmoSolver::new(batched_params(16, 8)).solve(&y, &mut rows, &exec());
        let sum: f64 = r.alpha.iter().zip(&y).map(|(a, yi)| a * yi).sum();
        assert!(sum.abs() < 1e-9, "Σ y α = {sum}");
        assert!(r.alpha.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn kkt_satisfied_globally() {
        let (x, y) = blobs(20);
        let p = batched_params(8, 4);
        let mut rows = make_rows(&x, 2, KernelKind::Rbf { gamma: 0.7 }, 8);
        let r = BatchedSmoSolver::new(p).solve(&y, &mut rows, &exec());
        let c = p.base.c;
        let mut f_u = f64::INFINITY;
        let mut f_max = f64::NEG_INFINITY;
        for i in 0..y.len() {
            if in_upper(y[i], r.alpha[i], c) {
                f_u = f_u.min(r.f[i]);
            }
            if in_lower(y[i], r.alpha[i], c) {
                f_max = f_max.max(r.f[i]);
            }
        }
        assert!(f_max - f_u < p.base.eps, "violation {}", f_max - f_u);
    }

    /// Heavily overlapping blobs: many support vectors, many SMO
    /// iterations — the regime the paper's datasets live in.
    fn hard_blobs(n_per: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_per {
            let t = i as f64 / n_per as f64;
            let jitter = ((i * 2654435761) % 97) as f64 / 97.0 - 0.5;
            x.push(vec![-0.2 + 0.8 * jitter, t + 0.5 * jitter]);
            y.push(-1.0);
            x.push(vec![0.2 - 0.8 * jitter, t - 0.5 * jitter]);
            y.push(1.0);
        }
        (x, y)
    }

    #[test]
    fn fewer_kernel_rows_than_classic() {
        // The headline mechanism: batching + buffering computes fewer rows
        // than classic SMO recomputing two rows per iteration with a tiny
        // cache.
        let (x, y) = hard_blobs(60);
        let kind = KernelKind::Rbf { gamma: 2.0 };

        let mut rows_c = make_rows(&x, 2, kind, 2); // classic: effectively no cache
        let classic =
            ClassicSmoSolver::new(SmoParams::with_c(10.0)).solve(&y, &mut rows_c, &exec());

        let mut rows_b = make_rows(&x, 2, kind, 64);
        let mut bp = batched_params(64, 32);
        bp.base.c = 10.0;
        let batched = BatchedSmoSolver::new(bp).solve(&y, &mut rows_b, &exec());

        assert!(batched.converged && classic.converged);
        assert!(
            batched.telemetry.rows.rows_computed < classic.telemetry.rows.rows_computed,
            "batched {} vs classic {}",
            batched.telemetry.rows.rows_computed,
            classic.telemetry.rows.rows_computed
        );
    }

    #[test]
    fn batched_does_more_iterations_but_fewer_launches() {
        // The paper's trade-off: more (cheap) iterations, fewer row
        // computations per iteration.
        let (x, y) = blobs(50);
        let kind = KernelKind::Rbf { gamma: 0.5 };
        let mut rows_b = make_rows(&x, 2, kind, 32);
        let batched = BatchedSmoSolver::new(batched_params(32, 16)).solve(&y, &mut rows_b, &exec());
        assert!(batched.outer_rounds < batched.iterations.max(1));
        // Row computation is bounded by the batch schedule (q new rows per
        // round plus the initial fill), not by the iteration count.
        let s = batched.telemetry.rows;
        assert!(
            s.rows_computed <= (batched.outer_rounds + 2) * 16 + 32,
            "rows {} rounds {}",
            s.rows_computed,
            batched.outer_rounds
        );
    }

    #[test]
    fn working_set_smaller_than_problem_still_converges() {
        let (x, y) = blobs(80);
        let mut rows = make_rows(&x, 2, KernelKind::Rbf { gamma: 0.3 }, 8);
        let r = BatchedSmoSolver::new(batched_params(8, 4)).solve(&y, &mut rows, &exec());
        assert!(r.converged);
    }

    #[test]
    fn degenerate_single_class() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1.0, 1.0, 1.0];
        let mut rows = make_rows(&x, 1, KernelKind::Linear, 3);
        let r = BatchedSmoSolver::new(batched_params(2, 2)).solve(&y, &mut rows, &exec());
        assert!(r.converged);
        assert!(r.alpha.iter().all(|&a| a == 0.0));
    }

    #[test]
    fn phase_times_populated() {
        let (x, y) = blobs(30);
        let mut rows = make_rows(&x, 2, KernelKind::Rbf { gamma: 0.5 }, 16);
        let r = BatchedSmoSolver::new(batched_params(16, 8)).solve(&y, &mut rows, &exec());
        let p = r.telemetry.sim_phases;
        assert!(p.kernel_s > 0.0, "kernel phase timed");
        assert!(p.subproblem_s > 0.0, "subproblem phase timed");
        assert!(p.other_s > 0.0, "other phase timed");
    }

    #[test]
    fn params_clamped_for_small_problems() {
        let p = BatchedParams::default().clamped_for(10);
        assert_eq!(p.ws_size, 10);
        assert!(p.q <= 10);
    }
}
