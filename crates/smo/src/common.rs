//! Shared solver types: parameters, results, telemetry, and the index-set
//! predicates of Equation (4)/(5) of the paper.

use gmp_kernel::RowProviderStats;
use serde::{Deserialize, Serialize};

/// Minimum curvature substituted when `eta <= 0` (degenerate pairs), as in
/// LibSVM's `TAU`.
pub const TAU: f64 = 1e-12;

/// Parameters shared by all SMO variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmoParams {
    /// Penalty parameter `C` of Problem (1).
    pub c: f64,
    /// Stopping tolerance ε: converged when `f_max - f_u < eps`
    /// (Constraint (9) with LibSVM's default 1e-3).
    pub eps: f64,
    /// Safety cap on SMO pair updates (defends against pathological
    /// configurations; hitting it is reported in the result).
    pub max_iter: u64,
    /// LibSVM's shrinking heuristic (classic solver only): periodically
    /// remove confidently-bounded instances from the active set, and
    /// reconstruct their indicators before declaring convergence. Changes
    /// cost, never the optimum.
    pub shrinking: bool,
}

impl Default for SmoParams {
    fn default() -> Self {
        SmoParams {
            c: 1.0,
            eps: 1e-3,
            max_iter: 10_000_000,
            shrinking: false,
        }
    }
}

impl SmoParams {
    /// Parameters with a given `C`, defaults elsewhere.
    pub fn with_c(c: f64) -> Self {
        SmoParams {
            c,
            ..Default::default()
        }
    }
}

/// Is instance `i` in `I_u = I_1 ∪ I_2 ∪ I_3` (its `y·α` can increase)?
#[inline]
pub fn in_upper(y: f64, alpha: f64, c: f64) -> bool {
    (y > 0.0 && alpha < c) || (y < 0.0 && alpha > 0.0)
}

/// Is instance `i` in `I_l = I_1 ∪ I_4 ∪ I_5` (its `y·α` can decrease)?
#[inline]
pub fn in_lower(y: f64, alpha: f64, c: f64) -> bool {
    (y > 0.0 && alpha > 0.0) || (y < 0.0 && alpha < c)
}

/// Wall/simulated time attribution over the three component groups the
/// paper's Fig. 11 reports: kernel-value computation, solving the
/// subproblem, and everything else (selection, indicator updates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Kernel value computation (batched row launches).
    pub kernel_s: f64,
    /// Solving the working-set subproblem (inner SMO iterations).
    pub subproblem_s: f64,
    /// Working-set selection, sorting, global indicator updates.
    pub other_s: f64,
}

impl PhaseTimes {
    /// Total across phases.
    pub fn total(&self) -> f64 {
        self.kernel_s + self.subproblem_s + self.other_s
    }

    /// Percentages `(kernel, subproblem, other)`; zeros if nothing timed.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.kernel_s / t,
            100.0 * self.subproblem_s / t,
            100.0 * self.other_s / t,
        )
    }

    /// Elementwise sum.
    pub fn add(&self, other: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            kernel_s: self.kernel_s + other.kernel_s,
            subproblem_s: self.subproblem_s + other.subproblem_s,
            other_s: self.other_s + other.other_s,
        }
    }
}

/// Counters and timings of one solver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SolverTelemetry {
    /// Row-provider counters (kernel evals, rows computed, hits/misses).
    pub rows: RowProviderStats,
    /// Simulated-time attribution per phase.
    pub sim_phases: PhaseTimes,
    /// Wall-clock attribution per phase.
    pub wall_phases: PhaseTimes,
}

/// Output of a binary SVM training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverResult {
    /// Instance weights α (length `n`).
    pub alpha: Vec<f64>,
    /// Bias term of the decision function in LibSVM's convention:
    /// `decision(x) = Σ y_j α_j K(x_j, x) - rho`.
    pub rho: f64,
    /// Final optimality indicators `f` (Equation 3). Training-set decision
    /// values follow as `v_i = f_i + y_i - rho`, which is how the sigmoid
    /// is fitted without extra kernel work.
    pub f: Vec<f64>,
    /// Dual objective in LibSVM's minimized form `½αᵀQα - Σα`.
    pub objective: f64,
    /// Number of SMO pair updates performed.
    pub iterations: u64,
    /// Outer working-set rounds (1-instance-pair rounds for the classic
    /// solver).
    pub outer_rounds: u64,
    /// True if the ε tolerance was met (false = iteration cap hit).
    pub converged: bool,
    /// Counters and phase timings.
    pub telemetry: SolverTelemetry,
}

impl SolverResult {
    /// Indices with `α > 0` (the support vectors).
    pub fn support_indices(&self) -> Vec<usize> {
        self.alpha
            .iter()
            .enumerate()
            .filter(|(_, &a)| a > 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of support vectors.
    pub fn n_support(&self) -> usize {
        self.alpha.iter().filter(|&&a| a > 0.0).count()
    }
}

/// Compute `rho` (LibSVM's `calculate_rho`): the mean of `f` over free
/// support vectors, or the midpoint of the violating extremes when no free
/// support vector exists.
pub fn compute_rho(y: &[f64], alpha: &[f64], f: &[f64], c: f64) -> f64 {
    let caps = vec![c; y.len()];
    compute_rho_capped(y, alpha, f, &caps)
}

/// [`compute_rho`] with per-instance box caps.
pub fn compute_rho_capped(y: &[f64], alpha: &[f64], f: &[f64], caps: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..y.len() {
        if alpha[i] > 0.0 && alpha[i] < caps[i] {
            sum += f[i];
            count += 1;
        }
    }
    if count > 0 {
        return sum / count as f64;
    }
    // No free SVs: bracket between the set extremes.
    let mut ub = f64::INFINITY;
    let mut lb = f64::NEG_INFINITY;
    for i in 0..y.len() {
        if in_upper(y[i], alpha[i], caps[i]) {
            ub = ub.min(f[i]);
        }
        if in_lower(y[i], alpha[i], caps[i]) {
            lb = lb.max(f[i]);
        }
    }
    if ub.is_finite() && lb.is_finite() {
        (ub + lb) / 2.0
    } else {
        0.0
    }
}

/// Dual objective `½αᵀQα - Σα` from the final indicators
/// (using `(Qα)_i = y_i (f_i + y_i)`).
pub fn compute_objective(y: &[f64], alpha: &[f64], f: &[f64]) -> f64 {
    let mut quad = 0.0;
    let mut lin = 0.0;
    for i in 0..y.len() {
        quad += alpha[i] * y[i] * (f[i] + y[i]);
        lin += alpha[i];
    }
    0.5 * quad - lin
}

/// Perform the SMO pair update with box clipping and return the step λ
/// (the change of `y_u α_u`, which equals the decrease of `y_l α_l`).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn pair_update(
    y: &[f64],
    alpha: &mut [f64],
    c: f64,
    u: usize,
    l: usize,
    f_u: f64,
    f_l: f64,
    eta: f64,
) -> f64 {
    pair_update_capped(y, alpha, c, c, u, l, f_u, f_l, eta)
}

/// [`pair_update`] with per-instance box caps (weighted classes: LibSVM's
/// `-wi` makes `C_i = C · w_{y_i}`).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn pair_update_capped(
    y: &[f64],
    alpha: &mut [f64],
    c_u: f64,
    c_l: f64,
    u: usize,
    l: usize,
    f_u: f64,
    f_l: f64,
    eta: f64,
) -> f64 {
    debug_assert!(f_l > f_u, "pair must be violating");
    let eta = eta.max(TAU);
    // Unconstrained optimum step.
    let mut lambda = (f_l - f_u) / eta;
    // Box capacities: y_u α_u can increase by cap_u, y_l α_l can decrease
    // by cap_l.
    let cap_u = if y[u] > 0.0 { c_u - alpha[u] } else { alpha[u] };
    let cap_l = if y[l] > 0.0 { alpha[l] } else { c_l - alpha[l] };
    lambda = lambda.min(cap_u).min(cap_l);
    alpha[u] += lambda * y[u];
    alpha[l] -= lambda * y[l];
    // Snap to the box to avoid drift from rounding.
    alpha[u] = alpha[u].clamp(0.0, c_u);
    alpha[l] = alpha[l].clamp(0.0, c_l);
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_set_membership() {
        let c = 1.0;
        // free SV: in both sets
        assert!(in_upper(1.0, 0.5, c) && in_lower(1.0, 0.5, c));
        assert!(in_upper(-1.0, 0.5, c) && in_lower(-1.0, 0.5, c));
        // y=+1, α=0: I_2 ⊂ I_u only
        assert!(in_upper(1.0, 0.0, c) && !in_lower(1.0, 0.0, c));
        // y=-1, α=C: I_3 ⊂ I_u only
        assert!(in_upper(-1.0, 1.0, c) && !in_lower(-1.0, 1.0, c));
        // y=+1, α=C: I_4 ⊂ I_l only
        assert!(!in_upper(1.0, 1.0, c) && in_lower(1.0, 1.0, c));
        // y=-1, α=0: I_5 ⊂ I_l only
        assert!(!in_upper(-1.0, 0.0, c) && in_lower(-1.0, 0.0, c));
    }

    #[test]
    fn pair_update_respects_box() {
        let y = vec![1.0, -1.0];
        let c = 1.0;
        let mut alpha = vec![0.9, 0.95];
        // Huge violation: step limited by cap_u = 0.1 and cap_l = C-α_l = 0.05.
        let lambda = pair_update(&y, &mut alpha, c, 0, 1, -5.0, 5.0, 1.0);
        assert!((lambda - 0.05).abs() < 1e-12);
        assert!((alpha[0] - 0.95).abs() < 1e-12);
        assert!((alpha[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pair_update_unconstrained_step() {
        let y = vec![1.0, 1.0];
        let mut alpha = vec![0.0, 0.5];
        // (f_l - f_u)/eta = (1 - 0)/2 = 0.5, caps: u: C-0=1, l: α_l=0.5.
        let lambda = pair_update(&y, &mut alpha, 1.0, 0, 1, 0.0, 1.0, 2.0);
        assert!((lambda - 0.5).abs() < 1e-12);
        assert!((alpha[0] - 0.5).abs() < 1e-12);
        assert!(alpha[1].abs() < 1e-12);
    }

    #[test]
    fn pair_update_degenerate_eta_uses_tau() {
        let y = vec![1.0, 1.0];
        let mut alpha = vec![0.0, 1.0];
        let lambda = pair_update(&y, &mut alpha, 1.0, 0, 1, 0.0, 1e-6, 0.0);
        // λ = 1e-6/TAU would be astronomically large; clipped to box cap 1.
        assert!((lambda - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rho_free_sv_average() {
        let y = vec![1.0, -1.0, 1.0];
        let alpha = vec![0.5, 0.3, 0.0];
        let f = vec![-0.2, -0.4, 1.0];
        let rho = compute_rho(&y, &alpha, &f, 1.0);
        assert!((rho - (-0.3)).abs() < 1e-12);
    }

    #[test]
    fn rho_no_free_sv_midpoint() {
        let y = vec![1.0, -1.0];
        let alpha = vec![0.0, 0.0]; // y=+1 α=0 in I_u; y=-1 α=0 in I_l
        let f = vec![-1.0, 1.0];
        let rho = compute_rho(&y, &alpha, &f, 1.0);
        assert!((rho - 0.0).abs() < 1e-12);
    }

    #[test]
    fn objective_zero_alpha() {
        let y = vec![1.0, -1.0];
        let alpha = vec![0.0, 0.0];
        let f = vec![-1.0, 1.0];
        assert_eq!(compute_objective(&y, &alpha, &f), 0.0);
    }

    #[test]
    fn phase_percentages_sum_100() {
        let p = PhaseTimes {
            kernel_s: 3.0,
            subproblem_s: 1.0,
            other_s: 1.0,
        };
        let (a, b, c) = p.percentages();
        assert!((a + b + c - 100.0).abs() < 1e-9);
        assert!((a - 60.0).abs() < 1e-9);
    }

    #[test]
    fn phase_add() {
        let p = PhaseTimes {
            kernel_s: 1.0,
            subproblem_s: 2.0,
            other_s: 3.0,
        };
        let q = p.add(&p);
        assert_eq!(q.total(), 12.0);
    }

    #[test]
    fn support_indices() {
        let r = SolverResult {
            alpha: vec![0.0, 0.5, 1.0, 0.0],
            rho: 0.0,
            f: vec![0.0; 4],
            objective: 0.0,
            iterations: 0,
            outer_rounds: 0,
            converged: true,
            telemetry: SolverTelemetry::default(),
        };
        assert_eq!(r.support_indices(), vec![1, 2]);
        assert_eq!(r.n_support(), 2);
    }
}
