//! SMO solvers for binary SVM training (§2.1.1 and §3.3.1 of the paper).
//!
//! Two solvers over the same [`gmp_kernel::KernelRows`] interface:
//!
//! * [`ClassicSmoSolver`] — the two-instance working set of
//!   Platt/LibSVM with the second-order heuristic of Fan, Chen & Lin
//!   (Equations 4–10 of the paper). This is the reference the paper's
//!   Table 4 compares against, and the per-binary-SVM algorithm of the GPU
//!   baseline (§3.2).
//! * [`BatchedSmoSolver`] — the GMP-SVM binary level (§3.3.1): select `q`
//!   maximally-violating instances per round, compute their kernel rows in
//!   one batched launch into the FIFO buffer, solve many SMO subproblems
//!   against the buffered rows with δ-adaptive early termination, then
//!   propagate the accumulated α changes to all optimality indicators.
//!
//! Both converge to the same optimum (same α support, bias and objective
//! within the SMO tolerance) — asserted by tests here and by the Table 4
//! experiment.

pub mod batched;
pub mod classic;
pub mod common;
pub mod decision;

pub use batched::{BatchedParams, BatchedSmoSolver};
pub use classic::ClassicSmoSolver;
pub use common::{PhaseTimes, SmoParams, SolverResult, SolverTelemetry};
pub use decision::{decision_values_for, decision_values_from_f};
