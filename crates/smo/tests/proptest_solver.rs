//! Property-based tests: solver invariants that must hold on *any* input.
#![allow(clippy::needless_range_loop)] // parallel-array indexing

use gmp_gpusim::CpuExecutor;
use gmp_kernel::{BufferedRows, KernelKind, KernelOracle, ReplacementPolicy};
use gmp_smo::common::{in_lower, in_upper};
use gmp_smo::{BatchedParams, BatchedSmoSolver, ClassicSmoSolver, SmoParams, SolverResult};
use gmp_sparse::CsrMatrix;
use proptest::prelude::*;
use std::sync::Arc;

fn exec() -> CpuExecutor {
    CpuExecutor::xeon(1)
}

/// Random small binary classification problem: points in [-1,1]^2 with
/// labels balanced (at least one of each).
fn problem() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (4usize..24).prop_flat_map(|n| {
        (
            proptest::collection::vec(proptest::collection::vec(-1.0..1.0f64, 2), n),
            proptest::collection::vec(proptest::bool::ANY, n),
        )
            .prop_map(|(x, flags)| {
                let mut y: Vec<f64> = flags.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
                // Guarantee both classes exist.
                y[0] = 1.0;
                let last = y.len() - 1;
                y[last] = -1.0;
                (x, y)
            })
    })
}

fn solve_classic(x: &[Vec<f64>], y: &[f64], c: f64, gamma: f64) -> SolverResult {
    let m = Arc::new(CsrMatrix::from_dense(x, 2));
    let oracle = Arc::new(KernelOracle::new(m, KernelKind::Rbf { gamma }));
    let mut rows = BufferedRows::new(oracle, x.len(), ReplacementPolicy::Lru, None).unwrap();
    ClassicSmoSolver::new(SmoParams {
        c,
        eps: 1e-3,
        max_iter: 100_000,
        shrinking: false,
    })
    .solve(y, &mut rows, &exec())
}

fn solve_batched(x: &[Vec<f64>], y: &[f64], c: f64, gamma: f64) -> SolverResult {
    let m = Arc::new(CsrMatrix::from_dense(x, 2));
    let oracle = Arc::new(KernelOracle::new(m, KernelKind::Rbf { gamma }));
    let mut rows = BufferedRows::new(oracle, 8, ReplacementPolicy::FifoBatch, None).unwrap();
    BatchedSmoSolver::new(BatchedParams {
        base: SmoParams {
            c,
            eps: 1e-3,
            max_iter: 100_000,
            shrinking: false,
        },
        ws_size: 8,
        q: 4,
        inner_relax: 0.1,
        max_inner: 64,
    })
    .solve(y, &mut rows, &exec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn classic_feasibility_and_kkt((x, y) in problem(), c in 0.5..8.0f64, gamma in 0.2..2.0f64) {
        let r = solve_classic(&x, &y, c, gamma);
        prop_assert!(r.converged);
        // Box constraints.
        prop_assert!(r.alpha.iter().all(|&a| (0.0..=c).contains(&a)));
        // Equality constraint.
        let s: f64 = r.alpha.iter().zip(&y).map(|(a, yi)| a * yi).sum();
        prop_assert!(s.abs() < 1e-9, "sum y alpha = {}", s);
        // KKT within eps.
        let mut f_u = f64::INFINITY;
        let mut f_max = f64::NEG_INFINITY;
        for i in 0..y.len() {
            if in_upper(y[i], r.alpha[i], c) { f_u = f_u.min(r.f[i]); }
            if in_lower(y[i], r.alpha[i], c) { f_max = f_max.max(r.f[i]); }
        }
        prop_assert!(f_max - f_u < 1e-3 || !f_max.is_finite() || !f_u.is_finite());
        // Minimized dual objective never exceeds the feasible point alpha=0.
        prop_assert!(r.objective <= 1e-12, "objective {}", r.objective);
    }

    #[test]
    fn batched_matches_classic((x, y) in problem(), c in 0.5..8.0f64) {
        let gamma = 0.8;
        let classic = solve_classic(&x, &y, c, gamma);
        let batched = solve_batched(&x, &y, c, gamma);
        prop_assert!(batched.converged);
        let tol = 2e-2 * classic.objective.abs().max(1.0);
        prop_assert!(
            (classic.objective - batched.objective).abs() < tol,
            "objective {} vs {}", classic.objective, batched.objective
        );
        prop_assert!((classic.rho - batched.rho).abs() < 5e-2,
            "rho {} vs {}", classic.rho, batched.rho);
    }

    #[test]
    fn batched_feasible_under_any_geometry((x, y) in problem()) {
        let r = solve_batched(&x, &y, 2.0, 1.0);
        prop_assert!(r.alpha.iter().all(|&a| (0.0..=2.0).contains(&a)));
        let s: f64 = r.alpha.iter().zip(&y).map(|(a, yi)| a * yi).sum();
        prop_assert!(s.abs() < 1e-9);
    }

    #[test]
    fn indicators_consistent_with_alpha((x, y) in problem()) {
        // f_i must equal sum_j alpha_j y_j K_ij - y_i at the solution.
        let r = solve_classic(&x, &y, 4.0, 0.7);
        let m = CsrMatrix::from_dense(&x, 2);
        let oracle = KernelOracle::new(Arc::new(m), KernelKind::Rbf { gamma: 0.7 });
        for i in 0..y.len() {
            let mut fi = -y[i];
            for j in 0..y.len() {
                if r.alpha[j] > 0.0 {
                    fi += r.alpha[j] * y[j] * oracle.eval_pair(i, j);
                }
            }
            prop_assert!((fi - r.f[i]).abs() < 1e-8, "f[{}] {} vs {}", i, r.f[i], fi);
        }
    }
}
